"""Single-run hot-loop benchmark: wall-clock and events/second.

Unlike the ``bench_fig*`` modules (which regenerate paper figures through
the result cache), this is a *performance* harness: it simulates a fixed
scenario set end to end — no caching — and records wall-clock seconds,
engine events processed, and events per second to ``BENCH_hotloop.json``
at the repository root.

The JSON keeps two measurement sets: ``baseline`` (recorded once, before
an optimization lands, with ``--set-baseline``) and ``current`` (refreshed
on every run).  The per-scenario ``speedup`` section is
``baseline_wall / current_wall``, so the perf trajectory of the hot path
is data, not anecdote.  Golden-equivalence tests
(``tests/test_golden_equivalence.py``) gate that the speed came from
mechanical work, not changed results.

A separate top-level ``sweep`` block benchmarks the compile/replay
split at sweep scale (many specs, few distinct frontends): compile-phase
wall clock with the trace cache off/cold/warm, plus transparent
end-to-end sweep times.  It is refreshed every run and has no
baseline/current split — the no-cache mode measured alongside *is* the
baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_loop.py            # refresh current
    PYTHONPATH=src python benchmarks/bench_hot_loop.py --repeats 5
    PYTHONPATH=src python benchmarks/bench_hot_loop.py --set-baseline
    PYTHONPATH=src python benchmarks/bench_hot_loop.py --quick    # CI smoke (1 repeat)
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import shutil
import tempfile
import time
from collections import deque
from pathlib import Path

from repro.compute import tracecache
from repro.compute.requestgen import RequestGenerator
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.spec import RunSpec
from repro.models import serving, zoo

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_hotloop.json"
MAX_TICKS = 50_000_000_000

#: Scenarios span the hot path's regimes: the flagship contended mix
#: (walk traffic + walk priority + refresh), a translation-off mix (the
#: streaming regime where batched FR-FCFS issue applies), and a bandwidth-
#: starved single-channel solo (deep queues, long drains).
SCENARIOS: dict[str, tuple[str, RunSpec]] = {
    "mix_dwt": (
        "dual-core ncf+dlrm, fully shared (+DWT), translation on",
        RunSpec.mix(("ncf", "dlrm"), "DWT", scale="mini"),
    ),
    "mix_d_notrans": (
        "dual-core ncf+dlrm, shared DRAM (+D), translation off",
        RunSpec.mix(("ncf", "dlrm"), "D", scale="mini", translation=False),
    ),
    "solo_1ch_stream": (
        "dlrm alone on one channel, translation off (streaming)",
        RunSpec.solo("dlrm", scale="mini", channels=1, translation=False),
    ),
    # The LLM-serving regime: wide prefill GEMMs co-located with the
    # decode phase's KV-cache streaming scans, fully shared resources —
    # the unrolled schedule makes this the layer-count-heavy scenario.
    "serving": (
        "dual-core gpt2 prefill+decode co-location, fully shared (+DWT)",
        RunSpec.mix(("gpt2:prefill", "gpt2:decode"), "DWT", scale="mini"),
    ),
}


def _networks(spec: RunSpec) -> list:
    """Serving-aware workload resolution (zoo names fall through)."""
    return serving.networks_for(
        spec.workloads, spec.scale, params=spec.serving, default_phase=spec.phase
    )


def measure(spec: RunSpec, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock for one cold simulation of ``spec``."""
    networks = _networks(spec)
    best_wall = None
    events = 0
    total_ticks = 0
    requests = 0
    for _ in range(repeats):
        sim = MultiCoreNPUSim(spec.system(), networks)
        start = time.perf_counter()
        result = sim.run(max_ticks=MAX_TICKS)
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
        events = sim.engine.events_processed
        total_ticks = result.total_ticks
        requests = result.dram.reads + result.dram.writes
    return {
        "wall_seconds": round(best_wall, 6),
        "events_processed": events,
        "events_per_second": round(events / best_wall, 1),
        "total_ticks": total_ticks,
        "dram_requests": requests,
    }


def run_benchmarks(repeats: int) -> dict[str, dict]:
    results = {}
    for name, (description, spec) in SCENARIOS.items():
        results[name] = measure(spec, repeats)
        results[name]["description"] = description
    return results


def measure_replay_modes(repeats: int) -> dict[str, dict]:
    """Per-mode wall clock for every scenario (the ``replay_modes`` block).

    ``events_per_second_equivalent`` divides the *pinned* event count —
    identical across modes, because batched/auto credit every elided
    micro-event back to the engine — by the measured wall, so all three
    modes are comparable on one scale.  Only the exclusive streaming
    scenario can honestly clear 1M ev/s-equivalent: shared-channel mixes
    are statically ineligible for batching (cross-core FR-FCFS
    arbitration makes every transaction order-dependent) and fall back
    to per-event replay by design, which the ``eligible_cores`` field
    makes visible.  CI gates the throughput floor on
    ``solo_1ch_stream``/``auto`` only.
    """
    from repro.core.replay import REPLAY_MODES, TurboDma

    results: dict[str, dict] = {}
    for name, (description, spec) in SCENARIOS.items():
        networks = _networks(spec)
        modes: dict[str, dict] = {}
        for mode in REPLAY_MODES:
            mode_spec = dataclasses.replace(spec, replay_mode=mode)
            best_wall = None
            events = total_ticks = eligible = ff_ticks = 0
            for _ in range(repeats):
                sim = MultiCoreNPUSim(mode_spec.system(), networks)
                start = time.perf_counter()
                result = sim.run(max_ticks=MAX_TICKS)
                wall = time.perf_counter() - start
                if best_wall is None or wall < best_wall:
                    best_wall = wall
                events = sim.engine.events_processed
                total_ticks = result.total_ticks
                eligible = len(sim.replay_plan.eligible_cores())
                ff_ticks = sum(
                    dma.rstats.fast_forwarded_ticks
                    for dma in sim.dmas.values()
                    if isinstance(dma, TurboDma)
                )
            modes[mode] = {
                "wall_seconds": round(best_wall, 6),
                "events_per_second_equivalent": round(events / best_wall, 1),
                "eligible_cores": eligible,
                "fast_forwarded_ticks": ff_ticks,
                "total_ticks": total_ticks,
            }
        results[name] = {"description": description, "modes": modes}
    return results


#: The sweep-scale scenario: a memory-side sweep whose specs all share a
#: handful of frontends, exactly the shape the trace cache exists for.
#: Twelve solo specs (two workloads x {1,2,4} channels x {4K,64K} pages)
#: collapse to two distinct (network, traffic-arch) frontends.
SWEEP_WORKLOADS = ("ncf", "dlrm")


def sweep_specs() -> list[RunSpec]:
    return [
        RunSpec.solo(workload, scale="mini", channels=channels, page_bytes=page_bytes)
        for workload in SWEEP_WORKLOADS
        for channels in (1, 2, 4)
        for page_bytes in (4096, 65536)
    ]


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return best


def measure_sweep(repeats: int) -> dict:
    """Benchmark the sweep's compile phase and end-to-end wall clock.

    Two measurement families, reported separately and honestly:

    ``frontend``: wall clock of the *compile phase alone* — acquiring a
    request trace for every (spec x core) in the sweep.  ``no_cache``
    regenerates each live with :class:`RequestGenerator` (the pre-split
    behaviour: O(specs x cores) generations); ``cold`` compiles through a
    fresh :class:`TraceCache`; ``warm_disk``/``warm_memo`` hit the two
    cache levels.  This is where the >=2x claim lives, because this is
    the work the cache actually removes.

    ``end_to_end``: full ``ExperimentRunner.run_many`` wall clock over
    the same sweep (fresh result cache each mode, serial jobs).  The
    event-driven replay dominates end-to-end time, so this speedup is
    modest by construction — it is recorded so the frontend numbers
    cannot be mistaken for whole-run gains.
    """
    from repro.experiments.runner import ExperimentRunner

    specs = sweep_specs()
    networks = {name: zoo.get(name, "mini") for name in SWEEP_WORKLOADS}
    frontends = [
        (networks[name], arch) for spec in specs for name, arch in spec.frontends()
    ]
    distinct = {
        tracecache.frontend_fingerprint(network, arch) for network, arch in frontends
    }

    def acquire_live() -> None:
        for network, arch in frontends:
            deque(RequestGenerator(network, arch).all_tiles(), maxlen=0)

    def acquire_cached(cache: tracecache.TraceCache) -> None:
        for network, arch in frontends:
            assert cache.get(network, arch) is not None

    tmp = Path(tempfile.mkdtemp(prefix="bench-sweep-"))
    try:
        frontend_no_cache = _best_of(acquire_live, repeats)
        cold_walls = []
        for attempt in range(repeats):
            cold_cache = tracecache.TraceCache(tmp / f"cold{attempt}")
            cold_walls.append(_best_of(lambda: acquire_cached(cold_cache), 1))
        frontend_cold = min(cold_walls)
        warm_dir = tmp / "cold0"
        frontend_warm_disk = _best_of(
            lambda: acquire_cached(tracecache.TraceCache(warm_dir)), repeats
        )
        memo_cache = tracecache.TraceCache(warm_dir)
        acquire_cached(memo_cache)
        frontend_warm_memo = _best_of(lambda: acquire_cached(memo_cache), repeats)

        def run_sweep(label: str, enabled: bool, seed_traces: Path | None = None):
            runner = ExperimentRunner(
                scale="mini",
                cache_dir=tmp / f"e2e-{label}",
                journal=False,
                trace_cache=enabled,
            )
            if seed_traces is not None:
                shutil.copytree(seed_traces, runner.trace_dir, dirs_exist_ok=True)
            tracecache.process_cache().clear_memo()
            start = time.perf_counter()
            runner.run_many(specs)
            return time.perf_counter() - start, runner.last_trace_stats

        e2e_no_cache, _ = run_sweep("no-cache", enabled=False)
        e2e_cold, _ = run_sweep("cold", enabled=True)
        e2e_warm, warm_stats = run_sweep(
            "warm", enabled=True, seed_traces=(tmp / "e2e-cold" / "traces")
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # One fixed frontend re-keyed under every registered dataflow engine:
    # the keys must all differ, or engines would silently share compiled
    # traces (CI asserts this distinctness in the bench-smoke job).
    from repro.compute.dataflow import registered_dataflows

    probe_network = networks[SWEEP_WORKLOADS[0]]
    probe_arch = next(
        arch for spec in specs for _, arch in spec.frontends()
    )
    dataflow_trace_keys = {
        dataflow: tracecache.frontend_fingerprint(
            probe_network, dataclasses.replace(probe_arch, dataflow=dataflow)
        )
        for dataflow in registered_dataflows()
    }

    return {
        "description": (
            "memory-side sweep: 12 solo specs (ncf/dlrm x 1/2/4ch x 4K/64K "
            "pages) sharing 2 distinct frontends"
        ),
        "specs": len(specs),
        "frontend_acquisitions": len(frontends),
        "distinct_frontends": len(distinct),
        "dataflow_trace_keys": dataflow_trace_keys,
        "frontend": {
            "no_cache_seconds": round(frontend_no_cache, 6),
            "cold_seconds": round(frontend_cold, 6),
            "warm_disk_seconds": round(frontend_warm_disk, 6),
            "warm_memo_seconds": round(frontend_warm_memo, 6),
            "speedup_warm_disk_vs_no_cache": round(
                frontend_no_cache / frontend_warm_disk, 3
            ),
            "speedup_warm_memo_vs_no_cache": round(
                frontend_no_cache / frontend_warm_memo, 3
            ),
        },
        "end_to_end": {
            "no_cache_seconds": round(e2e_no_cache, 6),
            "cold_seconds": round(e2e_cold, 6),
            "warm_seconds": round(e2e_warm, 6),
            "speedup_warm_vs_no_cache": round(e2e_no_cache / e2e_warm, 3),
        },
        "trace_cache_stats": warm_stats.summary() if warm_stats else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="one repeat (CI smoke)")
    parser.add_argument(
        "--set-baseline",
        action="store_true",
        help="record this run as the pre-optimization baseline",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else max(1, args.repeats)

    current = run_benchmarks(repeats)
    sweep = measure_sweep(repeats)
    replay_modes = measure_replay_modes(repeats)
    data = {}
    if args.out.exists():
        data = json.loads(args.out.read_text())
    if args.set_baseline or "baseline" not in data:
        data["baseline"] = current
    else:
        # A scenario added after the baseline was recorded self-baselines
        # on its first run, so its speedup series starts at 1.0 instead
        # of staying absent forever.
        for name, result in current.items():
            data["baseline"].setdefault(name, result)
    data["current"] = current
    data["sweep"] = sweep
    data["replay_modes"] = replay_modes
    data["speedup"] = {
        name: round(
            data["baseline"][name]["wall_seconds"] / current[name]["wall_seconds"], 3
        )
        for name in current
        if name in data["baseline"]
    }
    data["meta"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")

    width = max(len(name) for name in current)
    print(f"{'scenario':{width}}  {'wall (s)':>9}  {'events/s':>12}  {'speedup':>8}")
    for name, result in current.items():
        speedup = data["speedup"].get(name)
        print(
            f"{name:{width}}  {result['wall_seconds']:>9.3f}  "
            f"{result['events_per_second']:>12,.0f}  "
            f"{speedup if speedup is not None else '-':>8}"
        )
    frontend = sweep["frontend"]
    end_to_end = sweep["end_to_end"]
    print(
        f"sweep ({sweep['specs']} specs, {sweep['distinct_frontends']} frontends): "
        f"frontend {frontend['no_cache_seconds']:.3f}s live -> "
        f"{frontend['warm_disk_seconds']:.3f}s warm-disk "
        f"({frontend['speedup_warm_disk_vs_no_cache']}x); "
        f"end-to-end {end_to_end['no_cache_seconds']:.2f}s -> "
        f"{end_to_end['warm_seconds']:.2f}s warm "
        f"({end_to_end['speedup_warm_vs_no_cache']}x)"
    )
    for name, entry in replay_modes.items():
        per_mode = ", ".join(
            f"{mode} {stats['events_per_second_equivalent']:,.0f} ev/s"
            for mode, stats in entry["modes"].items()
        )
        print(f"replay {name}: {per_mode}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

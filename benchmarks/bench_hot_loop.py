"""Single-run hot-loop benchmark: wall-clock and events/second.

Unlike the ``bench_fig*`` modules (which regenerate paper figures through
the result cache), this is a *performance* harness: it simulates a fixed
scenario set end to end — no caching — and records wall-clock seconds,
engine events processed, and events per second to ``BENCH_hotloop.json``
at the repository root.

The JSON keeps two measurement sets: ``baseline`` (recorded once, before
an optimization lands, with ``--set-baseline``) and ``current`` (refreshed
on every run).  The per-scenario ``speedup`` section is
``baseline_wall / current_wall``, so the perf trajectory of the hot path
is data, not anecdote.  Golden-equivalence tests
(``tests/test_golden_equivalence.py``) gate that the speed came from
mechanical work, not changed results.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_loop.py            # refresh current
    PYTHONPATH=src python benchmarks/bench_hot_loop.py --repeats 5
    PYTHONPATH=src python benchmarks/bench_hot_loop.py --set-baseline
    PYTHONPATH=src python benchmarks/bench_hot_loop.py --quick    # CI smoke (1 repeat)
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.spec import RunSpec
from repro.models import zoo

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_hotloop.json"
MAX_TICKS = 50_000_000_000

#: Scenarios span the hot path's regimes: the flagship contended mix
#: (walk traffic + walk priority + refresh), a translation-off mix (the
#: streaming regime where batched FR-FCFS issue applies), and a bandwidth-
#: starved single-channel solo (deep queues, long drains).
SCENARIOS: dict[str, tuple[str, RunSpec]] = {
    "mix_dwt": (
        "dual-core ncf+dlrm, fully shared (+DWT), translation on",
        RunSpec.mix(("ncf", "dlrm"), "DWT", scale="mini"),
    ),
    "mix_d_notrans": (
        "dual-core ncf+dlrm, shared DRAM (+D), translation off",
        RunSpec.mix(("ncf", "dlrm"), "D", scale="mini", translation=False),
    ),
    "solo_1ch_stream": (
        "dlrm alone on one channel, translation off (streaming)",
        RunSpec.solo("dlrm", scale="mini", channels=1, translation=False),
    ),
}


def measure(spec: RunSpec, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock for one cold simulation of ``spec``."""
    networks = [zoo.get(name, spec.scale) for name in spec.workloads]
    best_wall = None
    events = 0
    total_ticks = 0
    requests = 0
    for _ in range(repeats):
        sim = MultiCoreNPUSim(spec.system(), networks)
        start = time.perf_counter()
        result = sim.run(max_ticks=MAX_TICKS)
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
        events = sim.engine.events_processed
        total_ticks = result.total_ticks
        requests = result.dram.reads + result.dram.writes
    return {
        "wall_seconds": round(best_wall, 6),
        "events_processed": events,
        "events_per_second": round(events / best_wall, 1),
        "total_ticks": total_ticks,
        "dram_requests": requests,
    }


def run_benchmarks(repeats: int) -> dict[str, dict]:
    results = {}
    for name, (description, spec) in SCENARIOS.items():
        results[name] = measure(spec, repeats)
        results[name]["description"] = description
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="one repeat (CI smoke)")
    parser.add_argument(
        "--set-baseline",
        action="store_true",
        help="record this run as the pre-optimization baseline",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else max(1, args.repeats)

    current = run_benchmarks(repeats)
    data = {}
    if args.out.exists():
        data = json.loads(args.out.read_text())
    if args.set_baseline or "baseline" not in data:
        data["baseline"] = current
    data["current"] = current
    data["speedup"] = {
        name: round(
            data["baseline"][name]["wall_seconds"] / current[name]["wall_seconds"], 3
        )
        for name in current
        if name in data["baseline"]
    }
    data["meta"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")

    width = max(len(name) for name in current)
    print(f"{'scenario':{width}}  {'wall (s)':>9}  {'events/s':>12}  {'speedup':>8}")
    for name, result in current.items():
        speedup = data["speedup"].get(name)
        print(
            f"{name:{width}}  {result['wall_seconds']:>9.3f}  "
            f"{result['events_per_second']:>12,.0f}  "
            f"{speedup if speedup is not None else '-':>8}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: scheduling page-table walks ahead of data bursts.

DESIGN.md calls out walk prioritization as a key memory-controller
choice: one pending walk gates many coalesced data transactions, so
serving walks behind data floods amplifies translation stalls.  This
bench quantifies the choice on contended dual-core mixes.
"""

import dataclasses

from conftest import emit, run_once

from repro.config import presets
from repro.core.metrics import geomean
from repro.core.sharing import SharingLevel
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.report import format_table
from repro.models import zoo

MIXES = (("res", "sfrnn"), ("ds2", "dlrm"), ("alex", "gpt2"), ("ncf", "yt"))


def _mix_cycles(mix, prioritize: bool) -> list[int]:
    system = presets.cloud_npu(2, SharingLevel.DWT)
    dram = dataclasses.replace(system.dram, prioritize_walks=prioritize)
    system = dataclasses.replace(system, dram=dram)
    result = MultiCoreNPUSim(system, [zoo.mini(name) for name in mix]).run()
    return [w.cycles for w in result.workloads]


def test_ablation_walk_priority(benchmark):
    def compute():
        return {
            mix: {
                "priority": _mix_cycles(mix, True),
                "fifo": _mix_cycles(mix, False),
            }
            for mix in MIXES
        }

    data = run_once(benchmark, compute)
    rows = []
    gains = []
    for mix, values in data.items():
        gain = geomean(
            [fifo / pri for pri, fifo in zip(values["priority"], values["fifo"])]
        )
        gains.append(gain)
        rows.append(
            ("+".join(mix), *values["fifo"], *values["priority"], round(gain, 3))
        )
    emit(format_table(
        ["mix", "fifo c0", "fifo c1", "prio c0", "prio c1", "speedup"],
        rows,
        title="\nAblation: walk priority in the memory controller (+DWT dual)",
    ))
    # Walk priority should help overall on contended mixes (and never
    # catastrophically hurt any of them).
    assert geomean(gains) > 1.0
    assert min(gains) > 0.85

"""Figure 16: page-size performance and fairness on multi-core NPUs (+DWT)."""

import os

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.mixes import subset_mixes
from repro.experiments.report import format_table


def test_fig16_pagesize_multi(benchmark, runner, dual_mixes):
    # The quad half of this figure triples the quad-mix simulation count,
    # so it uses a leaner default subset than Figures 5/7.
    quad_limit = int(os.environ.get("REPRO_QUAD_PAGESIZE_MIXES", "20"))
    quad = subset_mixes(4, quad_limit)

    def compute():
        return (
            figures.fig16_pagesize_multi(runner, 2, dual_mixes),
            figures.fig16_pagesize_multi(runner, 4, quad),
        )

    dual_data, quad_data = run_once(benchmark, compute)
    rows = []
    for label, data in (("dual", dual_data), ("quad", quad_data)):
        rows.append(
            (label,
             round(data["overall_performance"]["64KB"], 3),
             round(data["overall_performance"]["1MB"], 3),
             round(data["overall_fairness"]["4KB"], 3),
             round(data["overall_fairness"]["64KB"], 3),
             round(data["overall_fairness"]["1MB"], 3))
        )
    emit(format_table(
        ["cores", "perf 64KB/4KB", "perf 1MB/4KB",
         "fair 4KB", "fair 64KB", "fair 1MB"],
        rows,
        title="\nFigure 16: page sizes on multi-core NPUs (+DWT)",
    ))
    for data in (dual_data, quad_data):
        perf = data["overall_performance"]
        fair = data["overall_fairness"]
        # Paper shape: larger pages speed multi-core systems up, the
        # 64KB->1MB step stays small, fairness barely moves (<= ~2.3%).
        assert perf["64KB"] > 1.02
        assert perf["1MB"] >= perf["64KB"] - 0.02
        assert perf["1MB"] - perf["64KB"] < 0.06
        # Paper: fairness moves <= ~2.3%.  Our quad subset moves up to
        # ~9 points (big pages relieve walker contention, which also
        # equalizes slowdowns at this scale) — see EXPERIMENTS.md.
        assert abs(fair["64KB"] - fair["4KB"]) < 0.12
        assert abs(fair["1MB"] - fair["4KB"]) < 0.12
    # Paper: more cores -> more interference -> somewhat smaller
    # page-size gains.  At mini scale the quad gain lands near (here
    # slightly above) the dual gain — see EXPERIMENTS.md; require only
    # that the two stay in the same band.
    assert (
        abs(
            quad_data["overall_performance"]["64KB"]
            - dual_data["overall_performance"]["64KB"]
        )
        < 0.12
    )

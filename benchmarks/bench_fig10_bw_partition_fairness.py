"""Figure 10: DRAM-bandwidth partitioning schemes, fairness."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig10_bandwidth_partition_fairness(benchmark, runner, dual_mixes):
    data = run_once(
        benchmark,
        lambda: figures.fig10_bandwidth_partition_fairness(runner, dual_mixes),
    )
    rows = [
        (scheme, round(data["overall"][scheme], 3)) for scheme in data["schemes"]
    ]
    emit(format_table(
        ["scheme", "geomean fairness"], rows,
        title="\nFigure 10: bandwidth partitioning fairness (translation disabled)",
    ))
    overall = data["overall"]
    # Paper shape: unequal static splits are unfair; dynamic sharing's
    # fairness is comparable to the equal split's (the best static).
    assert overall["4:4"] > overall["1:7"]
    assert overall["4:4"] > overall["7:1"]
    assert overall["Dynamic"] > overall["1:7"]
    assert abs(overall["Dynamic"] - overall["4:4"]) < 0.12
    # The most skewed splits are markedly unfair.
    assert overall["1:7"] < 0.85

"""Figure 2(b): bursty DRAM requests of NCF on a single-core NPU."""

from conftest import emit, run_once

from repro.experiments import figures


def test_fig2_burstiness(benchmark):
    data = run_once(benchmark, lambda: figures.fig2_burstiness("ncf"))
    series = data["series"]
    emit(
        f"\nFigure 2(b): DRAM requests per {data['window_cycles']}-cycle "
        f"window, ncf single-core ({len(series)} windows)"
    )
    peak = data["peak_requests_per_window"]
    for start, count in series[: min(40, len(series))]:
        bar = "#" * int(40 * count / peak) if peak else ""
        emit(f"  {start:>8d} {count:>6d} {bar}")
    emit(
        f"  peak {peak}/window, mean {data['mean_requests_per_window']:.1f}, "
        f"burst ratio {data['burst_ratio']:.1f}x"
    )
    # Paper shape: requests arrive in large bursts separated by quiet
    # compute phases, not at a constant rate (ncf is memory-heavy, so its
    # ratio is the lowest of the zoo; see bench output for the series).
    assert data["burst_ratio"] > 1.4
    counts = [count for _, count in series]
    assert min(counts[:-1]) * 4 < peak  # genuinely quiet windows exist

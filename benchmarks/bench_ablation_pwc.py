"""Ablation: the page-walk cache (PWC) size.

Walks read one page-table entry per radix level; consecutive pages share
their upper-level entries, so a small per-core PWC removes most non-leaf
DRAM reads.  DESIGN.md calls this out as the knob that keeps walk *cost*
realistic while walk *bandwidth* stays the bottleneck.  This bench sweeps
the PWC size on translation-heavy workloads.
"""

import dataclasses

from conftest import emit, run_once

from repro.config import presets
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.report import format_table
from repro.models import zoo

SIZES = (0, 4, 32)
WORKLOADS = ("alex", "sfrnn", "dlrm", "gpt2")


def _cycles(name: str, pwc: int) -> int:
    system = presets.solo_slice()
    npumem = dataclasses.replace(system.npumem[0], pwc_entries=pwc)
    system = dataclasses.replace(system, npumem=(npumem,))
    return MultiCoreNPUSim(system, [zoo.mini(name)]).run().workloads[0].cycles


def test_ablation_pwc(benchmark):
    def compute():
        return {
            name: {pwc: _cycles(name, pwc) for pwc in SIZES}
            for name in WORKLOADS
        }

    data = run_once(benchmark, compute)
    rows = []
    for name, values in data.items():
        base = values[0]
        rows.append(
            (name, base, *(round(base / values[pwc], 2) for pwc in SIZES[1:]))
        )
    emit(format_table(
        ["workload", "no-PWC cycles"] + [f"speedup @{pwc}" for pwc in SIZES[1:]],
        rows,
        title="\nAblation: page-walk-cache size (single-core)",
    ))
    for name, values in data.items():
        # A PWC never hurts, and translation-heavy workloads gain clearly.
        assert values[4] <= values[0] * 1.01, name
        assert values[32] <= values[4] * 1.01, name
    assert data["alex"][0] / data["alex"][32] > 1.1

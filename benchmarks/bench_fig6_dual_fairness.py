"""Figure 6: dual-core fairness (Equation 1) per sharing level."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig6_dual_fairness(benchmark, runner, dual_mixes):
    data = run_once(
        benchmark, lambda: figures.fig6_dual_fairness(runner, dual_mixes)
    )
    levels = ["Static", "+D", "+DW", "+DWT"]
    rows = [
        (mix, *(round(values[level], 3) for level in levels))
        for mix, values in sorted(data["per_mix"].items())
    ]
    rows.append(("GEOMEAN", *(round(data["overall"][level], 3) for level in levels)))
    emit(format_table(
        ["mix"] + levels, rows,
        title="\nFigure 6: dual-core fairness per mix (Equation 1)",
    ))
    overall = data["overall"]
    # Paper shape: fairness stays high (>= ~0.85) at every level — the
    # paper's headline is that sharing costs only *minor* fairness.
    for level in levels:
        assert overall[level] > 0.80
    # TLB sharing has no meaningful fairness effect (section 4.4.2).
    assert abs(overall["+DWT"] - overall["+DW"]) < 0.06

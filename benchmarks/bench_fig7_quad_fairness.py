"""Figure 7: quad-core fairness CDF per sharing level."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import cdf_summary, format_table


def test_fig7_quad_fairness(benchmark, runner, quad_mixes):
    data = run_once(
        benchmark, lambda: figures.fig7_quad_fairness(runner, quad_mixes)
    )
    levels = ["Static", "+D", "+DW", "+DWT"]
    rows = []
    for level in levels:
        summary = cdf_summary(data["cdf"][level])
        rows.append(
            (level, round(data["overall"][level], 3),
             round(summary["p10"], 3), round(summary["p50"], 3),
             round(summary["p90"], 3))
        )
    emit(format_table(
        ["level", "geomean", "p10", "p50", "p90"], rows,
        title=f"\nFigure 7: quad-core fairness CDF over {len(quad_mixes)} mixes",
    ))
    overall = data["overall"]
    # Paper shape: fairness degradation from sharing stays minor, and
    # quad-core fairness sits below the dual-core values (more
    # co-runners, more interference).
    for level in levels:
        assert overall[level] > 0.75
    assert abs(overall["+DWT"] - overall["+DW"]) < 0.06

"""Figure 11: single-core speedup vs DRAM bandwidth."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table
from repro.models import zoo


def test_fig11_bandwidth_sweep(benchmark, runner):
    data = run_once(benchmark, lambda: figures.fig11_bandwidth_sweep(runner))
    counts = data["channel_counts"]
    rows = []
    for name in zoo.NAMES:
        series = dict(data["speedup"][name])
        rows.append((name, *(round(series[count], 2) for count in counts)))
    emit(format_table(
        ["workload"] + [f"{count}ch" for count in counts], rows,
        title="\nFigure 11: speedup vs DRAM bandwidth "
        "(normalized to 1 channel = 32 GB/s-equivalent)",
    ))
    for name in zoo.NAMES:
        series = [value for _, value in data["speedup"][name]]
        # Monotone non-decreasing: more bandwidth never hurts.
        for a, b in zip(series, series[1:]):
            assert b >= a - 0.02, name
        # Paper shape: the relationship is sub-linear — 8x the bandwidth
        # gives far less than 8x the performance.
        assert series[-1] < 8.0 * 0.8, name
        assert series[-1] >= 1.0, name
    # Memory-intensive workloads benefit more than compute-bound ones.
    last = {name: data["speedup"][name][-1][1] for name in zoo.NAMES}
    assert last["sfrnn"] > last["gpt2"]
    assert last["dlrm"] > last["yt"]

"""Figure 14: page-table-walker partitioning schemes, fairness."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig14_ptw_partition_fairness(benchmark, runner, dual_mixes):
    data = run_once(
        benchmark,
        lambda: figures.fig14_ptw_partition_fairness(runner, dual_mixes),
    )
    rows = [
        (scheme, round(data["overall"][scheme], 3)) for scheme in data["schemes"]
    ]
    emit(format_table(
        ["scheme", "geomean fairness"], rows,
        title="\nFigure 14: walker partitioning fairness (4-walker pool)",
    ))
    overall = data["overall"]
    # Paper shape: the equal split and dynamic sharing are the fair
    # options; skewed walker splits hurt fairness.
    assert overall["2:2"] > overall["1:3"]
    assert overall["2:2"] > overall["3:1"]
    assert overall["Dynamic"] > overall["1:3"]
    assert abs(overall["Dynamic"] - overall["2:2"]) < 0.12

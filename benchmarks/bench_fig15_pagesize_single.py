"""Figure 15: speedup of 64KB/1MB pages over 4KB, single-core."""

from conftest import emit, run_once

from repro.experiments import figures
from repro.experiments.report import format_table
from repro.models import zoo


def test_fig15_pagesize_single(benchmark, runner):
    data = run_once(benchmark, lambda: figures.fig15_pagesize_single(runner))
    rows = [
        (name, round(data["per_workload"][name]["64KB"], 3),
         round(data["per_workload"][name]["1MB"], 3))
        for name in zoo.NAMES
    ]
    rows.append(
        ("GEOMEAN", round(data["overall"]["64KB"], 3),
         round(data["overall"]["1MB"], 3))
    )
    emit(format_table(
        ["workload", "64KB/4KB", "1MB/4KB"], rows,
        title="\nFigure 15: page-size speedup over 4KB, single-core",
    ))
    overall = data["overall"]
    # Paper shape: large pages help meaningfully (paper: +17.6% at 64KB)
    # but the 64KB -> 1MB step adds almost nothing (+1.6%).
    assert 1.05 < overall["64KB"] < 1.45
    assert overall["1MB"] >= overall["64KB"] - 0.01
    assert overall["1MB"] - overall["64KB"] < 0.05
    per = data["per_workload"]
    # Sensitivity varies widely per workload (paper: gpt2 <= 5.8%,
    # dlrm up to 30%): recommendation > attention.
    assert per["gpt2"]["64KB"] < 1.10
    assert per["dlrm"]["64KB"] > per["gpt2"]["64KB"] + 0.05
    for name in zoo.NAMES:
        assert per[name]["64KB"] > 0.97, name  # large pages never hurt

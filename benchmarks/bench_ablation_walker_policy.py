"""Ablation (extension): walker-pool policies — static / DWS / fully shared.

Section 2.2 of the paper discusses DWS (Pratheek et al., HPCA'21):
dynamic page-walker *stealing* that lets a core borrow idle co-runner
walkers while guaranteeing it can reclaim its own.  The walker pool's
reservation bounds express this directly (``repro.mmu.ptw.dws_bounds``);
this bench compares the three policies on contended dual-core mixes with
a 2-walkers-per-core pool.
"""

import dataclasses

from conftest import emit, run_once

from repro.config import presets
from repro.config.misc import MiscConfig
from repro.core.metrics import geomean
from repro.core.sharing import SharingLevel
from repro.core.simulator import MultiCoreNPUSim
from repro.experiments.report import format_table
from repro.models import zoo

MIXES = (("res", "sfrnn"), ("ds2", "dlrm"), ("alex", "gpt2"), ("ncf", "yt"))
HOME_WALKERS = 2  # per core

POLICIES = {
    # (share_ptw, ptw_assignment, lower, upper)
    "static 2:2": (False, (HOME_WALKERS, HOME_WALKERS), 0, 0),
    "DWS steal": (True, None, 1, 3),   # dws_bounds({0:2,1:2}, 0.5) per core
    "fully shared": (True, None, 0, 0),
}


def _mix_cycles(mix, policy):
    share_ptw, assignment, lower, upper = POLICIES[policy]
    system = presets.cloud_npu(2, SharingLevel.DWT)
    npumem = tuple(
        dataclasses.replace(cfg, num_ptw=HOME_WALKERS) for cfg in system.npumem
    )
    system = dataclasses.replace(
        system,
        npumem=npumem,
        share_ptw=share_ptw,
        ptw_assignment=assignment,
        misc=MiscConfig(
            iterations=1, start_stagger_cycles=1500,
            ptw_lower_bound=lower, ptw_upper_bound=upper,
        ),
    )
    result = MultiCoreNPUSim(system, [zoo.mini(name) for name in mix]).run()
    return [w.cycles for w in result.workloads]


def test_ablation_walker_policy(benchmark):
    def compute():
        return {
            mix: {policy: _mix_cycles(mix, policy) for policy in POLICIES}
            for mix in MIXES
        }

    data = run_once(benchmark, compute)
    rows = []
    speedups = {policy: [] for policy in POLICIES}
    for mix, values in data.items():
        base = values["static 2:2"]
        row = ["+".join(mix)]
        for policy in POLICIES:
            gain = geomean([b / c for b, c in zip(base, values[policy])])
            speedups[policy].append(gain)
            row.append(round(gain, 3))
        rows.append(tuple(row))
    emit(format_table(
        ["mix"] + list(POLICIES), rows,
        title="\nAblation: walker-pool policy, geomean speedup vs static 2:2",
    ))
    overall = {policy: geomean(values) for policy, values in speedups.items()}
    # DWS must be safe: never much worse than static (its reclaim
    # guarantee), while retaining some of full sharing's upside.
    assert overall["DWS steal"] > 0.97
    assert overall["fully shared"] > 0.9
